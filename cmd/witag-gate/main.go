// Command witag-gate is the regression sentinel's CLI: it compares a
// candidate bench-artifact directory against a committed baseline and
// exits non-zero when the science regressed.
//
// Usage:
//
//	witag-gate -candidate DIR [-baseline bench] [-json] [-budget 1.3]
//	           [-tol 0.10] [-alpha 0.05] [-strict]
//
// Both directories hold the BENCH_<name>.json / BENCH_<name>.metrics.json
// pairs that `witag-bench -json DIR` writes. Three tiers run per
// experiment (DESIGN.md §12): deterministic metrics must match exactly,
// stochastic science series are classified ok/drift/regression/improvement
// per point via tolerance bands plus Welch's t (or a deterministic
// bootstrap over raw trials), and volatile wall-clock histograms are held
// to a quantile-ratio perf budget (-budget 0 turns the perf tier into
// ratio reporting only — the right setting when baseline and candidate
// come from different machines).
//
// Exit status: 0 when the overall verdict is ok, improvement or drift;
// 1 on regression (or on drift too, with -strict); 2 on usage or I/O
// errors. Reports are deterministic: the same artifact pair renders
// byte-identical output on every run.
package main

import (
	"flag"
	"fmt"
	"os"

	"witag/internal/buildinfo"
	"witag/internal/cliflags"
	"witag/internal/regress"
)

func main() {
	opts := regress.DefaultOptions()
	baseline := flag.String("baseline", "bench", "baseline artifact directory (the committed reference)")
	candidate := flag.String("candidate", "", "candidate artifact directory to gate (required)")
	asJSON := flag.Bool("json", false, "emit the drift report as JSON instead of aligned text")
	flag.Float64Var(&opts.Budget, "budget", opts.Budget, "volatile-histogram quantile ratio ceiling; 0 reports ratios without gating")
	flag.Float64Var(&opts.Tolerance, "tol", opts.Tolerance, "relative tolerance band for science series points")
	flag.Float64Var(&opts.Alpha, "alpha", opts.Alpha, "significance level for the Welch/bootstrap tests")
	strict := flag.Bool("strict", false, "also exit non-zero on drift (not just regression)")
	version := flag.Bool("version", false, "print build provenance (git SHA, Go version) and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "witag-gate")
		return
	}

	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "witag-gate: -candidate DIR is required")
		flag.Usage()
		os.Exit(2)
	}
	// Same up-front validation contract as the other CLIs (via
	// internal/cliflags): a mistyped directory must fail with the flag
	// named, not as a bare open error mid-gate.
	for flagName, dir := range map[string]string{"-baseline": *baseline, "-candidate": *candidate} {
		if verr := cliflags.InputDir(flagName, dir); verr != nil {
			fmt.Fprintln(os.Stderr, "witag-gate:", verr)
			os.Exit(2)
		}
	}
	rep, err := regress.Gate(*baseline, *candidate, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "witag-gate:", err)
		os.Exit(2)
	}
	if *asJSON {
		s, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "witag-gate:", err)
			os.Exit(2)
		}
		fmt.Print(s)
	} else {
		fmt.Print(rep.Render())
	}
	switch rep.Verdict {
	case regress.ClassRegression:
		os.Exit(1)
	case regress.ClassDrift:
		if *strict {
			os.Exit(1)
		}
	}
}
