// Command witag-bench regenerates every figure and analytical table of the
// WiTAG paper from the simulation, printing the same rows/series the paper
// reports plus this reproduction's measurements.
//
// Usage:
//
//	witag-bench [-experiment all|fig3|fig5|fig6|s41|compare|power|ablations]
//	            [-seed N] [-runs N] [-rounds N]
//
// Scale note: "-rounds" stands in for the paper's one-minute measurement
// windows; the defaults keep the full suite under a minute of wall time.
// Raise them to tighten the statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"witag/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: all, fig3, fig5, fig6, s41, compare, power, ablations")
		seed       = flag.Int64("seed", 42, "root random seed")
		runs       = flag.Int("runs", 4, "measurement repetitions (figure 5; figure 6 uses 60)")
		rounds     = flag.Int("rounds", 700, "query rounds per measurement run")
	)
	flag.Parse()

	if err := run(*experiment, *seed, *runs, *rounds); err != nil {
		fmt.Fprintln(os.Stderr, "witag-bench:", err)
		os.Exit(1)
	}
}

func run(experiment string, seed int64, runs, rounds int) error {
	all := experiment == "all"
	any := false

	if all || experiment == "fig3" {
		any = true
		res, err := experiments.Figure3(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
	}
	if all || experiment == "fig5" {
		any = true
		res, err := experiments.Figure5(experiments.Figure5Config{Seed: seed, Runs: runs, Round: rounds})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
	}
	if all || experiment == "fig6" {
		any = true
		cfg := experiments.DefaultFigure6Config()
		cfg.Seed = seed
		cfg.Round = rounds / 2
		if cfg.Round < 10 {
			cfg.Round = 10
		}
		a, err := experiments.Figure6(experiments.LocationA, cfg)
		if err != nil {
			return err
		}
		cfg.Seed = seed + 1
		b, err := experiments.Figure6(experiments.LocationB, cfg)
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
		fmt.Println(b.Render())
		if err := experiments.CheckFigure6Shape(a, b); err != nil {
			return err
		}
	}
	if all || experiment == "s41" {
		any = true
		res, err := experiments.Section41Sweep()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
	}
	if all || experiment == "compare" {
		any = true
		res, err := experiments.PriorSystemComparison(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
	}
	if all || experiment == "power" {
		any = true
		res, err := experiments.Section7Power(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
	}
	if all || experiment == "ablations" {
		any = true
		type ablation struct {
			name string
			run  func() (*experiments.AblationResult, error)
		}
		for _, a := range []ablation{
			{"switch mode", func() (*experiments.AblationResult, error) { return experiments.AblationSwitchMode(seed, rounds/2) }},
			{"trigger count", func() (*experiments.AblationResult, error) { return experiments.AblationTriggerCount(seed, rounds/4) }},
			{"FEC framing", func() (*experiments.AblationResult, error) { return experiments.AblationFEC(seed, 6) }},
			{"A-MPDU size", func() (*experiments.AblationResult, error) { return experiments.AblationAMPDUSize(seed, rounds/4) }},
			{"robust rate", func() (*experiments.AblationResult, error) { return experiments.AblationRobustRate(seed, rounds/4) }},
			{"encryption", func() (*experiments.AblationResult, error) { return experiments.AblationEncryption(seed, rounds/4) }},
		} {
			res, err := a.run()
			if err != nil {
				return fmt.Errorf("%s: %w", a.name, err)
			}
			fmt.Println(res.Render())
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
