// Command witag-bench regenerates every figure and analytical table of the
// WiTAG paper from the simulation, printing the same rows/series the paper
// reports plus this reproduction's measurements.
//
// Usage:
//
//	witag-bench [-experiment all|fig3|fig5|fig6|s41|compare|power|ablations|robustness|coding]
//	            [-seed N] [-runs N] [-rounds N] [-parallel N] [-json DIR]
//	            [-fault PROFILE] [-transfers N]
//	            [-transfer all|arq|fountain|rs] [-traffic all|PROFILE]
//	            [-profile DIR] [-metrics-addr HOST:PORT] [-trace FILE]
//	            [-trace-out DIR] [-trace-cap N] [-progress]
//	            [-timeline] [-timeline-window N] [-timeline-wall DUR]
//	            [-log FILE] [-log-level debug|info|warn|error] [-version]
//
// Scale note: "-rounds" stands in for the paper's one-minute measurement
// windows; the defaults keep the full suite under a minute of wall time.
// Raise them to tighten the statistics.
//
// Monte-Carlo trials fan across -parallel workers (default: all CPUs) via
// internal/sim; results are byte-identical for every worker count, so
// -parallel only changes the wall clock. Ctrl-C cancels cleanly.
//
// With -json DIR, each experiment additionally writes its series as
// machine-readable BENCH_<name>.json under DIR, so successive runs (and
// future PRs) can diff trajectories instead of parsing tables — plus a
// BENCH_<name>.metrics.json holding the experiment's metrics-registry
// delta (rounds, subframe verdicts, faults injected, ARQ activity) and a
// PROF_<name>.json phase-attribution profile (per-phase span quantiles,
// wall-time shares, allocations per trial) the gate budgets against.
//
// With -profile DIR, every experiment is additionally wrapped in pprof
// capture: cpu_<name>.pprof across the run, then heap_<name>.pprof and
// allocs_<name>.pprof after a forced GC — ready for `go tool pprof` —
// and the phase-attribution table is printed to stderr.
//
// Observability (all opt-in, none changes any result byte):
//
//	-metrics-addr :9090   serve the campaign hub for the lifetime of the
//	                      run: Prometheus text at /metrics, campaign list
//	                      and status at /campaigns, a live SSE event
//	                      stream at /campaigns/bench/events, plus
//	                      /debug/vars and /debug/pprof/ (":0" picks a
//	                      port, printed on stderr)
//	-trace trace.jsonl    record structured per-round/per-transfer events
//	                      into a bounded ring (-trace-cap events) and write
//	                      them as JSONL on exit
//	-trace-out DIR        like -trace, but one fresh ring per experiment,
//	                      written as TRACE_<name>.jsonl under DIR — the
//	                      files witag-trace analyze/flag/replay consume
//	-progress             live trials/sec and ETA on stderr
//	-timeline             capture a windowed metric time-series per
//	                      experiment (one logical window every
//	                      -timeline-window completed trials) and write it
//	                      as TL_<name>.jsonl beside the BENCH artifacts;
//	                      requires -json DIR. Logical windows are
//	                      deterministic: the TL bytes are identical at
//	                      any -parallel. -timeline-wall DUR additionally
//	                      samples volatile wall-clock windows every DUR
//	                      (these are excluded from determinism, like any
//	                      Volatile instrument). Live view: witag-top, or
//	                      /campaigns/bench/timeseries with -metrics-addr
//	-log run.jsonl        write the campaign's structured JSONL log there;
//	                      with -json DIR, a RUNS.jsonl run-ledger line is
//	                      also appended under DIR
//	                      (-log-level picks the floor: debug…error)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"witag/internal/buildinfo"
	"witag/internal/cliflags"
	"witag/internal/experiments"
	"witag/internal/fault"
	"witag/internal/obs"
	"witag/internal/perf"
	"witag/internal/regress"
	"witag/internal/sim"
	"witag/internal/traffic"
)

// experimentNames lists every -experiment value, in run order.
var experimentNames = []string{"all", "fig3", "fig5", "fig6", "s41", "compare", "power", "ablations", "robustness", "coding"}

type benchConfig struct {
	experiment string
	seed       int64
	runs       int
	rounds     int
	parallel   int
	jsonDir    string
	faultProf  string
	transfers  int
	transfer   string
	trafficSel string
	profileDir string

	metricsAddr string
	tracePath   string
	traceOut    string
	traceCap    int
	progress    bool
	logPath     string
	logLevel    string

	timeline     bool
	timelineWin  int
	timelineWall time.Duration
}

func main() {
	var cfg benchConfig
	flag.StringVar(&cfg.experiment, "experiment", "all", "which experiment to run: "+strings.Join(experimentNames, ", "))
	flag.Int64Var(&cfg.seed, "seed", 42, "root random seed")
	flag.IntVar(&cfg.runs, "runs", 4, "measurement repetitions (figure 5; figure 6 uses 60)")
	flag.IntVar(&cfg.rounds, "rounds", 700, "query rounds per measurement run")
	flag.IntVar(&cfg.parallel, "parallel", 0, "concurrent trial workers; <= 0 means all CPUs")
	flag.StringVar(&cfg.jsonDir, "json", "", "directory to write BENCH_<name>.json series into (empty: off)")
	flag.StringVar(&cfg.faultProf, "fault", "bursty", "fault profile for the robustness sweep: "+strings.Join(fault.Names(), ", "))
	flag.IntVar(&cfg.transfers, "transfers", 100, "transfers per sweep point per mode (robustness)")
	flag.StringVar(&cfg.transfer, "transfer", "all", "transfer scheme for the coding sweep: all, "+strings.Join(experiments.CodingSchemes, ", "))
	flag.StringVar(&cfg.trafficSel, "traffic", "all", "ambient-traffic profile for the coding sweep: all (the full profile grid), "+strings.Join(traffic.Names(), ", "))
	flag.StringVar(&cfg.profileDir, "profile", "", "write cpu/heap/allocs pprof profiles per experiment under this directory (empty: off)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address during the run (empty: off)")
	flag.StringVar(&cfg.tracePath, "trace", "", "write per-round/per-transfer trace events as JSONL to this file (empty: off)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write one TRACE_<name>.jsonl per experiment under this directory (empty: off)")
	flag.IntVar(&cfg.traceCap, "trace-cap", obs.DefaultTraceCap, "trace ring capacity in events; oldest events are dropped beyond it")
	flag.BoolVar(&cfg.progress, "progress", false, "live trial progress (rate, ETA) on stderr")
	flag.StringVar(&cfg.logPath, "log", "", "write the campaign's structured JSONL log to this file (empty: off)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: "+strings.Join(cliflags.LogLevels, ", "))
	flag.BoolVar(&cfg.timeline, "timeline", false, "write a TL_<name>.jsonl windowed time-series per experiment under -json DIR")
	flag.IntVar(&cfg.timelineWin, "timeline-window", obs.DefaultTimelineWindow, "completed trials per logical timeline window")
	flag.DurationVar(&cfg.timelineWall, "timeline-wall", 0, "also sample volatile wall-clock timeline windows at this interval (0: off)")
	version := flag.Bool("version", false, "print build provenance (git SHA, Go version) and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "witag-bench")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "witag-bench:", err)
		os.Exit(1)
	}
}

// writeMemProfiles snapshots heap_<name>.pprof and allocs_<name>.pprof
// under dir after a forced GC, so the heap numbers reflect live data, not
// whatever the collector hadn't reached yet.
func writeMemProfiles(dir, name string) error {
	runtime.GC()
	for _, kind := range []string{"heap", "allocs"} {
		p := pprof.Lookup(kind)
		if p == nil {
			continue
		}
		f, err := os.Create(filepath.Join(dir, kind+"_"+name+".pprof"))
		if err != nil {
			return err
		}
		if err := p.WriteTo(f, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// logWriter narrows a possibly-nil *os.File to the interface
// CampaignOptions expects: a nil file must become a nil interface, or
// the campaign would log into a typed-nil writer.
func logWriter(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}

// provenance builds the stamp shared by every artifact of this run. The
// timestamp is taken here, once, in the CLI — nothing on the
// deterministic experiment path reads the clock.
func provenance(cfg benchConfig) regress.Provenance {
	workers := cfg.parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return regress.Provenance{
		GitSHA:         buildinfo.GitSHA(),
		GoVersion:      runtime.Version(),
		TimestampUTC:   time.Now().UTC().Format(time.RFC3339),
		Seed:           cfg.seed,
		Runs:           cfg.runs,
		Rounds:         cfg.rounds,
		Transfers:      cfg.transfers,
		Workers:        workers,
		FaultProfile:   cfg.faultProf,
		TransferScheme: cfg.transfer,
		TrafficProfile: cfg.trafficSel,
	}
}

func run(ctx context.Context, cfg benchConfig) (err error) {
	// Up-front flag validation, shared with the other CLIs via
	// internal/cliflags: reject unknown selectors and unusable paths
	// before any work, naming the flag and the valid choices — a typo
	// must not silently run nothing.
	if verr := cliflags.Choice("-experiment", cfg.experiment, experimentNames, false); verr != nil {
		return verr
	}
	if verr := cliflags.FaultProfile("-fault", cfg.faultProf, false); verr != nil {
		return verr
	}
	if verr := cliflags.Choice("-transfer", cfg.transfer, append([]string{"all"}, experiments.CodingSchemes...), false); verr != nil {
		return verr
	}
	if verr := cliflags.TrafficProfile("-traffic", cfg.trafficSel, false, true); verr != nil {
		return verr
	}
	if cfg.tracePath != "" && cfg.traceOut != "" {
		return fmt.Errorf("-trace and -trace-out are exclusive: one ring for the whole run, or one per experiment")
	}
	if cfg.timeline && cfg.jsonDir == "" {
		return fmt.Errorf("-timeline writes TL_<name>.jsonl beside the BENCH artifacts and needs -json DIR")
	}
	if cfg.timelineWin <= 0 {
		return fmt.Errorf("-timeline-window must be >= 1, got %d", cfg.timelineWin)
	}
	logLevel, verr := cliflags.LogLevel("-log-level", cfg.logLevel)
	if verr != nil {
		return verr
	}
	for _, v := range []error{
		cliflags.OutputDir("-profile", cfg.profileDir),
		cliflags.OutputDir("-json", cfg.jsonDir),
		cliflags.OutputDir("-trace-out", cfg.traceOut),
		cliflags.OutputFile("-trace", cfg.tracePath),
		cliflags.OutputFile("-log", cfg.logPath),
		cliflags.MetricsAddr("-metrics-addr", cfg.metricsAddr),
	} {
		if v != nil {
			return v
		}
	}

	// Campaign wiring: this invocation is one campaign scope under a
	// process hub — its own registry, trace ring, progress reporter,
	// structured logger and SSE event broker. Every system, injector,
	// transferer and runner the harnesses build is instrumented through
	// it; attaching it draws no RNG values and changes no output byte.
	var progress *obs.Progress
	if cfg.progress {
		progress = obs.NewProgress(os.Stderr, "trials")
		defer progress.Finish()
	}
	var logFile *os.File
	if cfg.logPath != "" {
		logFile, err = os.Create(cfg.logPath)
		if err != nil {
			return fmt.Errorf("-log: %w", err)
		}
		defer logFile.Close()
	}
	traceCap := 0
	if cfg.tracePath != "" {
		traceCap = cfg.traceCap
		if traceCap <= 0 {
			traceCap = obs.DefaultTraceCap
		}
	}
	hub := obs.NewHub()
	camp, err := hub.Register("bench", obs.CampaignOptions{
		TraceCap: traceCap,
		Progress: progress,
		LogW:     logWriter(logFile),
		LogLevel: logLevel,
	})
	if err != nil {
		return err
	}
	reg, observer, trace := camp.Registry, camp.Observer, camp.Trace
	defer experiments.SetObserver(experiments.SetObserver(observer))
	defer experiments.SetProgress(experiments.SetProgress(progress))
	defer experiments.SetCampaign(experiments.SetCampaign(camp))

	// The run ledger and the final campaign status, written however the
	// run ends. The ledger lands beside the BENCH artifacts (no -json
	// directory, no ledger); artifacts collects what the run wrote.
	var artifacts []string
	defer func() {
		camp.Finish(err)
		outcome := "ok"
		switch {
		case err != nil && ctx.Err() != nil:
			outcome = "cancelled"
		case err != nil:
			outcome = "error"
		}
		camp.Logger.Info("run finished", slog.String("outcome", outcome), slog.Int64("wall_ms", camp.WallMs()))
		if cfg.jsonDir == "" {
			return
		}
		rec := obs.RunRecord{
			Tool: "witag-bench", Campaign: camp.ID, Outcome: outcome,
			WallMs: camp.WallMs(), Artifacts: artifacts, Provenance: provenance(cfg),
			Build: buildinfo.Current("witag-bench"),
		}
		if err != nil {
			rec.Error = err.Error()
		}
		if lerr := obs.AppendRunRecord(cfg.jsonDir, rec); lerr != nil {
			fmt.Fprintln(os.Stderr, "witag-bench: ledger:", lerr)
		}
	}()
	camp.Logger.Info("run started",
		slog.String("experiment", cfg.experiment), slog.Int64("seed", cfg.seed),
		slog.Int("runs", cfg.runs), slog.Int("rounds", cfg.rounds))

	if cfg.metricsAddr != "" {
		srv, serr := obs.ServeHub(cfg.metricsAddr, hub)
		if serr != nil {
			return serr
		}
		// Tear the listener down on Ctrl-C too, not only on return — Close
		// is idempotent, so the AfterFunc and the defer can race safely.
		unhook := context.AfterFunc(ctx, func() { hub.CloseAll(); srv.Close() })
		defer unhook()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (also /campaigns, /campaigns/%s/events, /debug/pprof/)\n", srv.Addr, camp.ID)
	}
	if cfg.tracePath != "" {
		defer func() {
			f, err := os.Create(cfg.tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "witag-bench: trace:", err)
				return
			}
			defer f.Close()
			if err := trace.WriteJSONL(f); err != nil {
				fmt.Fprintln(os.Stderr, "witag-bench: trace:", err)
				return
			}
			if d := trace.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s (%d older events dropped; raise -trace-cap)\n", trace.Len(), cfg.tracePath, d)
			} else {
				fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", trace.Len(), cfg.tracePath)
			}
		}()
	}

	// emit writes an experiment's series plus the metrics-registry delta
	// accumulated since the previous experiment finished, both wrapped in
	// a provenance envelope naming what produced them, plus the delta's
	// phase-attribution profile as PROF_<name>.json. The trial count is
	// the runner's own tally for this experiment, read from the delta.
	lastSnap := reg.Snapshot()
	runProv := provenance(cfg)
	emit := func(name string, v any) error {
		now := reg.Snapshot()
		delta := now.Delta(lastSnap)
		lastSnap = now
		rep := perf.FromSnapshot(delta)
		if cfg.profileDir != "" && rep.Trials > 0 {
			fmt.Fprintf(os.Stderr, "perf %s:\n%s", name, rep.Render())
		}
		// Low coverage on a span-bearing experiment means untimed work
		// crept into the trials. Analytic experiments (fig3, s41, compare)
		// record no spans at all and stay quiet — losing instrumentation
		// entirely is the gate's structural check, not this warning.
		spansFired := false
		for _, ps := range rep.Phases {
			if ps.Count > 0 {
				spansFired = true
				break
			}
		}
		if spansFired && rep.Trials > 0 && rep.Coverage < 0.9 {
			fmt.Fprintf(os.Stderr, "perf: %s: spans attribute only %.1f%% of trial wall time\n", name, 100*rep.Coverage)
		}
		// Live phase-attribution snapshot for /campaigns/bench/events
		// watchers, mirroring the PROF artifact written below.
		rep.Publish(camp, name)
		camp.Logger.Info("experiment finished", slog.String("experiment", name),
			slog.Int64("trials", delta.Counters["runner.trials_started"]),
			slog.Int64("rounds", delta.Counters["core.rounds"]))
		if cfg.jsonDir == "" {
			return nil
		}
		prov := runProv
		prov.Experiment = name
		prov.Trials = delta.Counters["runner.trials_started"]
		if err := regress.WriteSeries(cfg.jsonDir, name, prov, v); err != nil {
			return err
		}
		if err := regress.WriteMetrics(cfg.jsonDir, name, prov, delta); err != nil {
			return err
		}
		if err := regress.WriteProf(cfg.jsonDir, name, prov, rep); err != nil {
			return err
		}
		artifacts = append(artifacts,
			"BENCH_"+name+".json", "BENCH_"+name+".metrics.json", "PROF_"+name+".json")
		return nil
	}

	all := cfg.experiment == "all"
	seed, runs, rounds, parallel := cfg.seed, cfg.runs, cfg.rounds, cfg.parallel

	// runExperiment runs one experiment under the right observer. With
	// -trace-out, the experiment records into its own fresh ring, written
	// as TRACE_<name>.jsonl under the directory when it finishes — one
	// self-contained file per experiment for witag-trace to analyze. With
	// -timeline, the experiment gets its own fresh timeline attached to
	// the campaign (every runner under it then samples windowed deltas),
	// written as TL_<name>.jsonl beside the BENCH artifacts.
	runExperiment := func(name string, fn func(runner sim.Runner) error) error {
		if !all && cfg.experiment != name {
			return nil
		}
		camp.Logger.Info("experiment started", slog.String("experiment", name))
		o := observer
		var rec *obs.Recorder
		if cfg.traceOut != "" {
			rec = obs.NewRecorder(cfg.traceCap)
			o = obs.NewObserver(reg, rec)
		}
		var tl *obs.Timeline
		stopWall := func() {}
		if cfg.timeline {
			tl = obs.NewTimeline(reg, obs.TimelineConfig{WindowTrials: cfg.timelineWin})
			camp.SetTimeline(tl)
			if cfg.timelineWall > 0 {
				stopWall = tl.StartWallSampler(cfg.timelineWall)
			}
			defer func() {
				stopWall() // idempotent
				camp.SetTimeline(nil)
			}()
		}
		prev := experiments.SetObserver(o)
		var cpuFile *os.File
		if cfg.profileDir != "" {
			var perr error
			cpuFile, perr = os.Create(filepath.Join(cfg.profileDir, "cpu_"+name+".pprof"))
			if perr != nil {
				experiments.SetObserver(prev)
				return perr
			}
			if perr := pprof.StartCPUProfile(cpuFile); perr != nil {
				cpuFile.Close()
				experiments.SetObserver(prev)
				return perr
			}
		}
		err := fn(sim.Runner{Workers: parallel, Obs: o, Progress: progress, Campaign: camp})
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if cerr := cpuFile.Close(); err == nil && cerr != nil {
				err = cerr
			}
			if perr := writeMemProfiles(cfg.profileDir, name); err == nil && perr != nil {
				err = perr
			}
		}
		experiments.SetObserver(prev)
		if err != nil {
			return err
		}
		if tl != nil {
			stopWall()
			tl.Flush()
			path := filepath.Join(cfg.jsonDir, "TL_"+name+".jsonl")
			f, terr := os.Create(path)
			if terr != nil {
				return terr
			}
			if terr := tl.WriteJSONL(f); terr != nil {
				f.Close()
				return terr
			}
			if terr := f.Close(); terr != nil {
				return terr
			}
			artifacts = append(artifacts, "TL_"+name+".jsonl")
			if d := tl.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "timeline: wrote %d windows to %s (%d older windows dropped)\n", tl.Total()-d, path, d)
			}
		}
		if rec == nil {
			return nil
		}
		if err := os.MkdirAll(cfg.traceOut, 0o755); err != nil {
			return err
		}
		path := filepath.Join(cfg.traceOut, "TRACE_"+name+".jsonl")
		artifacts = append(artifacts, path)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if d := rec.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s (%d older events dropped; raise -trace-cap)\n", rec.Len(), path, d)
		} else {
			fmt.Fprintf(os.Stderr, "trace: wrote %d events to %s\n", rec.Len(), path)
		}
		return nil
	}

	if err := runExperiment("fig3", func(sim.Runner) error {
		res, err := experiments.Figure3Ctx(ctx, seed, parallel)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		return emit("fig3", res)
	}); err != nil {
		return err
	}
	if err := runExperiment("fig5", func(sim.Runner) error {
		res, err := experiments.Figure5Ctx(ctx, experiments.Figure5Config{Seed: seed, Runs: runs, Round: rounds, Workers: parallel})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		return emit("fig5", res)
	}); err != nil {
		return err
	}
	if err := runExperiment("fig6", func(sim.Runner) error {
		fcfg := experiments.DefaultFigure6Config()
		fcfg.Seed = seed
		fcfg.Workers = parallel
		fcfg.Round = rounds / 2
		if fcfg.Round < 10 {
			fcfg.Round = 10
		}
		a, err := experiments.Figure6Ctx(ctx, experiments.LocationA, fcfg)
		if err != nil {
			return err
		}
		fcfg.Seed = seed + 1
		b, err := experiments.Figure6Ctx(ctx, experiments.LocationB, fcfg)
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
		fmt.Println(b.Render())
		if err := experiments.CheckFigure6Shape(a, b); err != nil {
			return err
		}
		return emit("fig6", map[string]experiments.Figure6Series{"A": a.Series(), "B": b.Series()})
	}); err != nil {
		return err
	}
	if err := runExperiment("s41", func(sim.Runner) error {
		res, err := experiments.Section41SweepCtx(ctx, parallel)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		return emit("s41", res)
	}); err != nil {
		return err
	}
	if err := runExperiment("compare", func(sim.Runner) error {
		res, err := experiments.PriorSystemComparison(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		return emit("compare", res)
	}); err != nil {
		return err
	}
	if err := runExperiment("power", func(runner sim.Runner) error {
		res, err := experiments.Section7PowerCtx(ctx, runner, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		return emit("power", res)
	}); err != nil {
		return err
	}
	if err := runExperiment("ablations", func(runner sim.Runner) error {
		type ablation struct {
			name string
			run  func() (*experiments.AblationResult, error)
		}
		ablationSeries := map[string]*experiments.AblationResult{}
		for _, a := range []ablation{
			{"switch mode", func() (*experiments.AblationResult, error) {
				return experiments.AblationSwitchModeCtx(ctx, runner, seed, rounds/2)
			}},
			{"trigger count", func() (*experiments.AblationResult, error) {
				return experiments.AblationTriggerCountCtx(ctx, runner, seed, rounds/4)
			}},
			{"FEC framing", func() (*experiments.AblationResult, error) {
				return experiments.AblationFECCtx(ctx, runner, seed, 6)
			}},
			{"A-MPDU size", func() (*experiments.AblationResult, error) {
				return experiments.AblationAMPDUSizeCtx(ctx, runner, seed, rounds/4)
			}},
			{"robust rate", func() (*experiments.AblationResult, error) {
				return experiments.AblationRobustRateCtx(ctx, runner, seed, rounds/4)
			}},
			{"encryption", func() (*experiments.AblationResult, error) {
				return experiments.AblationEncryptionCtx(ctx, runner, seed, rounds/4)
			}},
		} {
			res, err := a.run()
			if err != nil {
				return fmt.Errorf("%s: %w", a.name, err)
			}
			fmt.Println(res.Render())
			ablationSeries[a.name] = res
		}
		return emit("ablations", ablationSeries)
	}); err != nil {
		return err
	}
	if err := runExperiment("robustness", func(sim.Runner) error {
		rcfg := experiments.DefaultRobustnessConfig()
		rcfg.Seed = seed
		rcfg.Workers = parallel
		rcfg.BaseProfile = cfg.faultProf
		rcfg.Transfers = cfg.transfers
		res, err := experiments.RobustnessCtx(ctx, rcfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		return emit("robustness", res)
	}); err != nil {
		return err
	}
	if err := runExperiment("coding", func(sim.Runner) error {
		ccfg := experiments.DefaultAdaptiveCodingConfig()
		ccfg.Seed = seed
		ccfg.Workers = parallel
		full := cfg.transfer == "all" && cfg.trafficSel == "all"
		if cfg.transfer != "all" {
			ccfg.Schemes = []string{cfg.transfer}
		}
		if cfg.trafficSel != "all" {
			// Narrow the grid to the profiles composed with the selected
			// ambient-traffic preset.
			var kept []experiments.CodingProfile
			for _, p := range ccfg.Profiles {
				if p.Traffic == cfg.trafficSel {
					kept = append(kept, p)
				}
			}
			if len(kept) == 0 {
				return fmt.Errorf("no coding profile uses traffic %q", cfg.trafficSel)
			}
			ccfg.Profiles = kept
		}
		res, err := experiments.AdaptiveCodingCtx(ctx, ccfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		// The shape claims compare all three schemes across the full grid;
		// a -transfer/-traffic narrowed run is exploration, not a gate.
		if full {
			if err := res.ShapeChecks(); err != nil {
				return err
			}
		}
		return emit("coding", res)
	}); err != nil {
		return err
	}
	return nil
}
