// Command witag-bench regenerates every figure and analytical table of the
// WiTAG paper from the simulation, printing the same rows/series the paper
// reports plus this reproduction's measurements.
//
// Usage:
//
//	witag-bench [-experiment all|fig3|fig5|fig6|s41|compare|power|ablations|robustness]
//	            [-seed N] [-runs N] [-rounds N] [-parallel N] [-json DIR]
//	            [-fault PROFILE] [-transfers N]
//
// Scale note: "-rounds" stands in for the paper's one-minute measurement
// windows; the defaults keep the full suite under a minute of wall time.
// Raise them to tighten the statistics.
//
// Monte-Carlo trials fan across -parallel workers (default: all CPUs) via
// internal/sim; results are byte-identical for every worker count, so
// -parallel only changes the wall clock. Ctrl-C cancels cleanly.
//
// With -json DIR, each experiment additionally writes its series as
// machine-readable BENCH_<name>.json under DIR, so successive runs (and
// future PRs) can diff trajectories instead of parsing tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"witag/internal/experiments"
	"witag/internal/fault"
	"witag/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: all, fig3, fig5, fig6, s41, compare, power, ablations, robustness")
		seed       = flag.Int64("seed", 42, "root random seed")
		runs       = flag.Int("runs", 4, "measurement repetitions (figure 5; figure 6 uses 60)")
		rounds     = flag.Int("rounds", 700, "query rounds per measurement run")
		parallel   = flag.Int("parallel", 0, "concurrent trial workers; <= 0 means all CPUs")
		jsonDir    = flag.String("json", "", "directory to write BENCH_<name>.json series into (empty: off)")
		faultProf  = flag.String("fault", "bursty", "fault profile for the robustness sweep: "+strings.Join(fault.Names(), ", "))
		transfers  = flag.Int("transfers", 100, "transfers per sweep point per mode (robustness)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *experiment, *seed, *runs, *rounds, *parallel, *jsonDir, *faultProf, *transfers); err != nil {
		fmt.Fprintln(os.Stderr, "witag-bench:", err)
		os.Exit(1)
	}
}

// writeJSON emits one experiment's series as BENCH_<name>.json under dir.
func writeJSON(dir, name string, v any) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), append(buf, '\n'), 0o644)
}

func run(ctx context.Context, experiment string, seed int64, runs, rounds, parallel int, jsonDir, faultProf string, transfers int) error {
	all := experiment == "all"
	any := false
	runner := sim.Runner{Workers: parallel}

	if all || experiment == "fig3" {
		any = true
		res, err := experiments.Figure3Ctx(ctx, seed, parallel)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		if err := writeJSON(jsonDir, "fig3", res); err != nil {
			return err
		}
	}
	if all || experiment == "fig5" {
		any = true
		res, err := experiments.Figure5Ctx(ctx, experiments.Figure5Config{Seed: seed, Runs: runs, Round: rounds, Workers: parallel})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		if err := writeJSON(jsonDir, "fig5", res); err != nil {
			return err
		}
	}
	if all || experiment == "fig6" {
		any = true
		cfg := experiments.DefaultFigure6Config()
		cfg.Seed = seed
		cfg.Workers = parallel
		cfg.Round = rounds / 2
		if cfg.Round < 10 {
			cfg.Round = 10
		}
		a, err := experiments.Figure6Ctx(ctx, experiments.LocationA, cfg)
		if err != nil {
			return err
		}
		cfg.Seed = seed + 1
		b, err := experiments.Figure6Ctx(ctx, experiments.LocationB, cfg)
		if err != nil {
			return err
		}
		fmt.Println(a.Render())
		fmt.Println(b.Render())
		if err := experiments.CheckFigure6Shape(a, b); err != nil {
			return err
		}
		type locSeries struct {
			Location string    `json:"location"`
			RunBERs  []float64 `json:"runBERs"`
			P50      float64   `json:"p50"`
			P90      float64   `json:"p90"`
		}
		series := func(r *experiments.Figure6Result) locSeries {
			return locSeries{Location: string(rune(r.Location)), RunBERs: r.RunBERs, P50: r.P50, P90: r.P90}
		}
		if err := writeJSON(jsonDir, "fig6", map[string]locSeries{"A": series(a), "B": series(b)}); err != nil {
			return err
		}
	}
	if all || experiment == "s41" {
		any = true
		res, err := experiments.Section41SweepCtx(ctx, parallel)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		if err := writeJSON(jsonDir, "s41", res); err != nil {
			return err
		}
	}
	if all || experiment == "compare" {
		any = true
		res, err := experiments.PriorSystemComparison(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		if err := writeJSON(jsonDir, "compare", res); err != nil {
			return err
		}
	}
	if all || experiment == "power" {
		any = true
		res, err := experiments.Section7PowerCtx(ctx, runner, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		if err := writeJSON(jsonDir, "power", res); err != nil {
			return err
		}
	}
	if all || experiment == "ablations" {
		any = true
		type ablation struct {
			name string
			run  func() (*experiments.AblationResult, error)
		}
		ablationSeries := map[string]*experiments.AblationResult{}
		for _, a := range []ablation{
			{"switch mode", func() (*experiments.AblationResult, error) {
				return experiments.AblationSwitchModeCtx(ctx, runner, seed, rounds/2)
			}},
			{"trigger count", func() (*experiments.AblationResult, error) {
				return experiments.AblationTriggerCountCtx(ctx, runner, seed, rounds/4)
			}},
			{"FEC framing", func() (*experiments.AblationResult, error) {
				return experiments.AblationFECCtx(ctx, runner, seed, 6)
			}},
			{"A-MPDU size", func() (*experiments.AblationResult, error) {
				return experiments.AblationAMPDUSizeCtx(ctx, runner, seed, rounds/4)
			}},
			{"robust rate", func() (*experiments.AblationResult, error) {
				return experiments.AblationRobustRateCtx(ctx, runner, seed, rounds/4)
			}},
			{"encryption", func() (*experiments.AblationResult, error) {
				return experiments.AblationEncryptionCtx(ctx, runner, seed, rounds/4)
			}},
		} {
			res, err := a.run()
			if err != nil {
				return fmt.Errorf("%s: %w", a.name, err)
			}
			fmt.Println(res.Render())
			ablationSeries[a.name] = res
		}
		if err := writeJSON(jsonDir, "ablations", ablationSeries); err != nil {
			return err
		}
	}
	if all || experiment == "robustness" {
		any = true
		cfg := experiments.DefaultRobustnessConfig()
		cfg.Seed = seed
		cfg.Workers = parallel
		cfg.BaseProfile = faultProf
		cfg.Transfers = transfers
		res, err := experiments.RobustnessCtx(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := res.ShapeChecks(); err != nil {
			return err
		}
		if err := writeJSON(jsonDir, "robustness", res); err != nil {
			return err
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
