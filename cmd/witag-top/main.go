// Command witag-top is a live terminal dashboard over a running witag
// campaign hub — the `top` for Monte-Carlo sweeps. Point it at the
// -metrics-addr of a witag-bench or witag-sim run (or a future
// witag-serve) and it renders every campaign's progress bar, rolling
// BER/goodput/fault-rate with sparklines, event-drop counters and the
// latest anomalies, refreshing in place.
//
// Usage:
//
//	witag-top [-addr HOST:PORT] [-refresh DUR] [-once] [-plain] [-version]
//
// It consumes only the hub's public HTTP surface: /campaigns for the
// status rows, /campaigns/<id>/metrics?format=json for the counters the
// rolling rates are derived from, and the /campaigns/<id>/events SSE
// stream for anomalies. Rates are deltas between successive polls:
//
//	rate     Δ runner.trials_done        per second
//	BER      Δ core.bit_errors           / Δ core.bits
//	goodput  Δ (core.bits − bit_errors)  per second, as Kb/s
//	fault%   Δ (trigger_missed+ba_lost)  / Δ core.rounds
//	drops    Δ events.dropped            (slow SSE watchers shedding load)
//
// -once renders a single frame (no ANSI clear, no rates that need two
// samples) and exits — usable from scripts and CI logs. -plain keeps the
// refresh loop but skips ANSI screen clearing, appending frames instead.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"witag/internal/buildinfo"
	"witag/internal/cliflags"
	"witag/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "campaign hub address (the run's -metrics-addr)")
	refresh := flag.Duration("refresh", time.Second, "poll/redraw interval")
	once := flag.Bool("once", false, "render one frame and exit")
	plain := flag.Bool("plain", false, "no ANSI screen clearing; append frames")
	version := flag.Bool("version", false, "print build provenance (git SHA, Go version) and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "witag-top")
		return
	}
	if err := cliflags.MetricsAddrFormat("-addr", *addr); err != nil {
		fmt.Fprintln(os.Stderr, "witag-top:", err)
		os.Exit(2)
	}
	if *refresh <= 0 {
		fmt.Fprintln(os.Stderr, "witag-top: -refresh must be positive")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	app := &app{
		base:  "http://" + *addr,
		http:  &http.Client{Timeout: 5 * time.Second},
		views: map[string]*campaignView{},
	}
	if err := app.run(ctx, *refresh, *once, *plain); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "witag-top:", err)
		os.Exit(1)
	}
}

// historyLen bounds the per-campaign rolling sample window; at a 1s
// refresh this is ~half a minute of trajectory per sparkline.
const historyLen = 32

// anomalyKeep bounds the per-campaign anomaly feed shown under the row.
const anomalyKeep = 4

// sample is one polled metrics snapshot with its arrival time.
type sample struct {
	t    time.Time
	snap obs.Snapshot
}

// campaignView is everything witag-top knows about one campaign: the
// last status row, the rolling snapshot window, and the SSE feed state.
type campaignView struct {
	status   obs.CampaignStatus
	samples  []sample
	anoms    []obs.Anomaly
	events   int64 // SSE events received
	watching bool  // an SSE watcher goroutine is attached
	gone     bool  // no longer listed by /campaigns
}

type app struct {
	base string
	http *http.Client

	mu    sync.Mutex
	views map[string]*campaignView
}

func (a *app) run(ctx context.Context, refresh time.Duration, once, plain bool) error {
	if err := a.poll(ctx); err != nil {
		return fmt.Errorf("cannot reach hub at %s: %w", a.base, err)
	}
	if once {
		fmt.Print(a.render(refresh))
		return nil
	}
	tick := time.NewTicker(refresh)
	defer tick.Stop()
	for {
		if !plain {
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Print(a.render(refresh))
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-tick.C:
		}
		if err := a.poll(ctx); err != nil {
			// A vanished hub usually means the run finished: render the
			// last state once more with a note rather than erroring out.
			a.mu.Lock()
			for _, v := range a.views {
				v.gone = true
			}
			a.mu.Unlock()
		}
	}
}

// poll refreshes the campaign list and each campaign's metrics snapshot,
// and attaches an SSE watcher to campaigns that lack one.
func (a *app) poll(ctx context.Context) error {
	var statuses []obs.CampaignStatus
	if err := a.getJSON(ctx, "/campaigns", &statuses); err != nil {
		return err
	}
	now := time.Now()
	listed := map[string]bool{}
	for _, st := range statuses {
		listed[st.ID] = true
		var snap obs.Snapshot
		snapErr := a.getJSON(ctx, "/campaigns/"+st.ID+"/metrics?format=json", &snap)

		a.mu.Lock()
		v := a.views[st.ID]
		if v == nil {
			v = &campaignView{}
			a.views[st.ID] = v
		}
		v.status = st
		v.gone = false
		if snapErr == nil {
			v.samples = append(v.samples, sample{t: now, snap: snap})
			if len(v.samples) > historyLen {
				v.samples = v.samples[len(v.samples)-historyLen:]
			}
		}
		watch := !v.watching && st.State == "running"
		if watch {
			v.watching = true
		}
		a.mu.Unlock()

		if watch {
			go a.watchEvents(ctx, st.ID)
		}
	}
	a.mu.Lock()
	for id, v := range a.views {
		if !listed[id] {
			v.gone = true
		}
	}
	a.mu.Unlock()
	return nil
}

func (a *app) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, a.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := a.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// watchEvents follows one campaign's SSE stream, feeding anomalies into
// the view. The stream ends when the campaign finishes or the hub shuts
// down; the watcher then detaches so a later poll can re-attach if the
// campaign is still live.
func (a *app) watchEvents(ctx context.Context, id string) {
	defer func() {
		a.mu.Lock()
		if v := a.views[id]; v != nil {
			v.watching = false
		}
		a.mu.Unlock()
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, a.base+"/campaigns/"+id+"/events", nil)
	if err != nil {
		return
	}
	// No client timeout here: SSE streams live for the campaign.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event string
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || data.Len() > 0 {
				a.handleEvent(id, event, data.String())
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
		// Comment lines (": stream open") fall through untouched.
	}
}

func (a *app) handleEvent(id, event, data string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := a.views[id]
	if v == nil {
		return
	}
	v.events++
	switch event {
	case "anomaly":
		var an obs.Anomaly
		if json.Unmarshal([]byte(data), &an) == nil {
			v.anoms = append(v.anoms, an)
			if len(v.anoms) > anomalyKeep {
				v.anoms = v.anoms[len(v.anoms)-anomalyKeep:]
			}
		}
	case "status":
		var st obs.CampaignStatus
		if json.Unmarshal([]byte(data), &st) == nil && st.ID == id {
			v.status = st
		}
	}
}

// series derives one rolling per-poll series from the sample window:
// f(prev, cur, dt) for each consecutive pair, oldest first.
func (v *campaignView) series(f func(prev, cur obs.Snapshot, dt float64) float64) []float64 {
	var out []float64
	for i := 1; i < len(v.samples); i++ {
		dt := v.samples[i].t.Sub(v.samples[i-1].t).Seconds()
		if dt <= 0 {
			dt = 1e-9
		}
		out = append(out, f(v.samples[i-1].snap, v.samples[i].snap, dt))
	}
	return out
}

func counterDelta(prev, cur obs.Snapshot, name string) float64 {
	return float64(cur.Counters[name] - prev.Counters[name])
}

func last(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// spark renders vals as a fixed-alphabet sparkline, scaled to its own
// min/max (a flat series renders as a low bar, not a blank).
func spark(vals []float64) string {
	const levels = "▁▂▃▄▅▆▇█"
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * 7)
		}
		if idx < 0 {
			idx = 0
		} else if idx > 7 {
			idx = 7
		}
		b.WriteRune([]rune(levels)[idx])
	}
	return b.String()
}

// bar renders a fixed-width progress bar.
func bar(done, total int64, width int) string {
	if total <= 0 {
		return strings.Repeat("-", width)
	}
	fill := int(float64(width) * float64(done) / float64(total))
	if fill > width {
		fill = width
	}
	return strings.Repeat("#", fill) + strings.Repeat("-", width-fill)
}

func (a *app) render(refresh time.Duration) string {
	a.mu.Lock()
	defer a.mu.Unlock()

	ids := make([]string, 0, len(a.views))
	for id := range a.views {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var b strings.Builder
	fmt.Fprintf(&b, "witag-top — %s  refresh %s  %d campaign(s)  %s\n\n",
		a.base, refresh, len(ids), time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "%-10s %-8s %-28s %9s %10s %12s %7s %6s %5s\n",
		"CAMPAIGN", "STATE", "PROGRESS", "TRIALS/S", "BER", "GOODPUT", "FAULT%", "DROPS", "ANOM")

	for _, id := range ids {
		v := a.views[id]
		st := v.status
		state := st.State
		if v.gone && state == "running" {
			state = "lost"
		}

		rate := v.series(func(p, c obs.Snapshot, dt float64) float64 {
			return counterDelta(p, c, "runner.trials_done") / dt
		})
		ber := v.series(func(p, c obs.Snapshot, _ float64) float64 {
			if bits := counterDelta(p, c, "core.bits"); bits > 0 {
				return counterDelta(p, c, "core.bit_errors") / bits
			}
			return 0
		})
		goodput := v.series(func(p, c obs.Snapshot, dt float64) float64 {
			return (counterDelta(p, c, "core.bits") - counterDelta(p, c, "core.bit_errors")) / dt / 1e3
		})
		faults := v.series(func(p, c obs.Snapshot, _ float64) float64 {
			if rounds := counterDelta(p, c, "core.rounds"); rounds > 0 {
				return 100 * (counterDelta(p, c, "core.rounds_trigger_missed") + counterDelta(p, c, "core.rounds_ba_lost")) / rounds
			}
			return 0
		})
		drops := v.series(func(p, c obs.Snapshot, _ float64) float64 {
			return counterDelta(p, c, "events.dropped")
		})

		pct := 0.0
		if st.Total > 0 {
			pct = 100 * float64(st.Done) / float64(st.Total)
		}
		progress := fmt.Sprintf("[%s] %3.0f%% %d/%d", bar(st.Done, st.Total, 12), pct, st.Done, st.Total)
		fmt.Fprintf(&b, "%-10s %-8s %-28s %9.1f %10.2e %9.1fKb/s %7.1f %6.0f %5d\n",
			id, state, progress, last(rate), last(ber), last(goodput), last(faults),
			last(drops), len(v.anoms))
		if len(v.samples) >= 3 {
			fmt.Fprintf(&b, "%-10s %-8s ber %-14s goodput %-14s fault %-14s drops %s\n",
				"", "", spark(ber), spark(goodput), spark(faults), spark(drops))
		}
		for _, an := range v.anoms {
			fmt.Fprintf(&b, "  ! %-12s trial=%-5d %s\n", an.Rule, an.Trial, an.Detail)
		}
	}
	return b.String()
}
