module witag

go 1.22
