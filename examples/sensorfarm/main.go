// Sensor farm: the paper's motivating deployment — battery-free sensors
// scattered through a space, read through an existing WiFi network.
//
// Three tags share one client/AP pair. Each tag answers only queries whose
// trigger pattern matches its address (multi-tag TDM, §7's trigger design
// generalised), and each reading travels in a CRC-16 + SECDED(8,4) framed
// transfer — the error-correction layer the paper defers to future work —
// spread over as many query rounds as it needs.
//
// Run: go run ./examples/sensorfarm
package main

import (
	"fmt"
	"log"

	"witag/internal/channel"
	"witag/internal/core"
	"witag/internal/experiments"
)

// sensor is one deployed tag with the reading it wants to report.
type sensor struct {
	address int
	pos     channel.Point
	reading string
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sensors := []sensor{
		{address: 0, pos: channel.Point{X: 1.5, Y: 0.4}, reading: "soil-moisture=31% row=3"},
		{address: 1, pos: channel.Point{X: 3.0, Y: -0.6}, reading: "temp=22.4C valve=open"},
		{address: 2, pos: channel.Point{X: 6.0, Y: 0.5}, reading: "battery-free uptime=188d"},
	}
	const patternLen = 4 // addresses 0..3

	codec := core.Codec{FEC: true, InterleaveDepth: 12}
	fmt.Println("=== WiTAG sensor farm: 3 tags, 1 unmodified AP ===")

	for _, s := range sensors {
		// Every tag compares the trigger envelope to its own pattern; a
		// mismatch and it stays silent. Distinct addresses never collide
		// (see core.PatternsCollide), so polling is interference-free.
		pattern, err := core.TriggerPattern(s.address, patternLen)
		if err != nil {
			return err
		}

		env := channel.NewEnvironment(int64(100 + s.address))
		env.AddReflector(channel.Point{X: 4, Y: 3.5}, 60)
		env.AddReflector(channel.Point{X: 4, Y: -3.5}, 60)
		env.AddScatterers(3, 0, -3, 8, 3, 15, 1.0)
		sys, err := core.NewSystem(env,
			channel.Point{X: 0, Y: 0}, channel.Point{X: 8, Y: 0},
			s.pos, experiments.TagGain, int64(s.address)+9)
		if err != nil {
			return err
		}
		det, err := core.AddressedDetector(s.address, patternLen, 0.5)
		if err != nil {
			return err
		}
		sys.Tag.Detector = det

		// Encode the reading and stream it across query rounds.
		bits, err := codec.Encode([]byte(s.reading))
		if err != nil {
			return err
		}
		var rx []byte
		rounds := 0
		for off := 0; off < len(bits); off += sys.Spec.DataLen {
			end := off + sys.Spec.DataLen
			if end > len(bits) {
				end = len(bits)
			}
			env.Advance(0.05)
			res, err := sys.QueryRound(bits[off:end])
			if err != nil {
				return err
			}
			rx = append(rx, res.RxBits[:end-off]...)
			rounds++
		}

		payload, corrected, err := codec.Decode(rx)
		status := "verified"
		if err != nil {
			status = fmt.Sprintf("FAILED (%v) — the reader would re-poll", err)
			payload = nil
		}
		fmt.Printf("tag %d  pattern=%v  %d bits over %d rounds\n", s.address, patternLevels(pattern), len(bits), rounds)
		fmt.Printf("       reading: %q  [%s, %d bit(s) FEC-corrected]\n", payload, status, corrected)
	}

	fmt.Println("\nEvery exchange above was ordinary 802.11n traffic: query A-MPDUs in,")
	fmt.Println("block ACKs out. The AP needs no firmware change, driver, or key material.")
	return nil
}

func patternLevels(p []bool) string {
	out := make([]byte, len(p))
	for i, hi := range p {
		if hi {
			out[i] = 'H'
		} else {
			out[i] = 'L'
		}
	}
	return string(out)
}
