// Encrypted network: WiTAG's headline advantage demonstrated.
//
// The client and AP speak WPA2 (CCMP) — every MPDU body is AES-CCM
// ciphertext with an 8-byte MIC. The tag neither holds keys nor parses
// frames; it corrupts subframes at the channel level, and the block ACK
// reports the damage exactly as on an open network. For contrast, the
// HitchHike-class baseline refuses the same network: translating
// ciphertext symbols breaks decryption, which is why prior systems require
// open networks and modified APs (§2).
//
// Run: go run ./examples/encrypted
package main

import (
	"fmt"
	"log"

	"witag/internal/baselines"
	"witag/internal/channel"
	"witag/internal/core"
	"witag/internal/crypto80211"
	"witag/internal/experiments"
	"witag/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== WiTAG on a WPA2 (CCMP) network ===")

	env := channel.NewEnvironment(21)
	env.AddReflector(channel.Point{X: 4, Y: 3.5}, 60)
	env.AddReflector(channel.Point{X: 4, Y: -3.5}, 60)
	env.AddScatterers(3, 0, -3, 8, 3, 15, 1.0)
	sys, err := core.NewSystem(env,
		channel.Point{X: 0, Y: 0}, channel.Point{X: 8, Y: 0},
		channel.Point{X: 1.5, Y: 0.3}, experiments.TagGain, 21)
	if err != nil {
		return err
	}

	// Pairwise temporal key from the WPA2 handshake — known to client and
	// AP, *not* to the tag.
	tk := []byte("witag-pairwise-k")
	cipher, err := crypto80211.NewCCMP(tk, [6]byte{2, 0, 0, 0, 0, 0x10}, 0)
	if err != nil {
		return err
	}
	sys.Cipher = cipher
	sys.Scheduler.Cipher = cipher
	if err := sys.Reshape(); err != nil {
		return err
	}
	fmt.Printf("cipher: %s (+%d bytes per MPDU → %d-tick subframes)\n",
		cipher.Name(), cipher.Overhead(), sys.Spec.TicksPerSubframe)

	// Stream a framed reading over the encrypted network.
	codec := core.Codec{FEC: true, InterleaveDepth: 12}
	reading := []byte("vault-humidity=41%")
	bits, err := codec.Encode(reading)
	if err != nil {
		return err
	}
	var rx []byte
	for off := 0; off < len(bits); off += sys.Spec.DataLen {
		end := off + sys.Spec.DataLen
		if end > len(bits) {
			end = len(bits)
		}
		env.Advance(0.05)
		res, err := sys.QueryRound(bits[off:end])
		if err != nil {
			return err
		}
		rx = append(rx, res.RxBits[:end-off]...)
	}
	payload, corrected, err := codec.Decode(rx)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	fmt.Printf("tag reading recovered through WPA2: %q (%d bit(s) corrected)\n", payload, corrected)

	// Longer-run BER on the encrypted link.
	rs, err := experiments.MeasureRun(sys, env, 400, 22)
	if err != nil {
		return err
	}
	rate, err := sys.TagRateBps()
	if err != nil {
		return err
	}
	fmt.Printf("encrypted-link BER over %d bits: %.4f, tag rate %.1f Kbps\n\n",
		rs.Bits, rs.BER, rate/1e3)

	// The baseline's fate on the same network.
	fmt.Println("=== HitchHike on the same network ===")
	hh, err := baselines.NewHitchHikeLink(2, 1, stats.NewRNG(5))
	if err != nil {
		return err
	}
	hh.EncryptionEnabled = true
	if _, err := hh.Transmit(make([]byte, 16), make([]byte, 8)); err != nil {
		fmt.Printf("HitchHike: %v\n", err)
	} else {
		return fmt.Errorf("HitchHike unexpectedly worked under encryption")
	}
	fmt.Println("\nWiTAG never touches plaintext: a corrupted ciphertext MPDU simply fails")
	fmt.Println("its FCS/MIC at the AP, clears a block-ACK bit, and the reader moves on.")
	return nil
}
