// NLoS office: the Figure 4 floor plan's non-line-of-sight scenarios.
//
// The tag sits one metre from the client; the AP is in another room —
// location A ≈7 m away behind a wooden wall, location B ≈17 m away behind
// concrete and metal cabinets — while people work and walk around. The
// paper reports 90th-percentile BERs of 0.007 (A) and 0.018 (B); this
// example reproduces the campaign at reduced scale and prints both CDFs.
//
// Run: go run ./examples/nlosoffice
package main

import (
	"fmt"
	"log"
	"math"

	"witag/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== WiTAG through walls: Figure 4's locations A and B ===")
	cfg := experiments.Figure6Config{Seed: 11, Runs: 30, Round: 150}

	a, err := experiments.Figure6(experiments.LocationA, cfg)
	if err != nil {
		return err
	}
	cfg.Seed = 12
	b, err := experiments.Figure6(experiments.LocationB, cfg)
	if err != nil {
		return err
	}

	fmt.Println(a.Render())
	fmt.Println(b.Render())

	if err := experiments.CheckFigure6Shape(a, b); err != nil {
		return fmt.Errorf("shape check: %w", err)
	}
	fmt.Println("shape checks passed: low BER throughout; B (more walls, 17 m) worse than A,")
	fmt.Println("matching the paper's 90th-percentile ordering.")

	// Show what the deployment actually looks like.
	sys, env, err := experiments.NLoSTestbed(experiments.LocationB, 13)
	if err != nil {
		return err
	}
	snr, err := env.SNR(sys.ClientPos, sys.APPos)
	if err != nil {
		return err
	}
	fmt.Printf("\nlocation B link: client %v → AP %v through %d obstacles, SNR after walls ≈ %.0f dB\n",
		sys.ClientPos, sys.APPos, len(env.Walls), 10*lg(snr))
	for _, w := range env.Walls {
		fmt.Printf("  wall at x=%.1f: %s (−%.0f dB)\n", w.A.X, w.Material, w.AttenuationDb)
	}
	return nil
}

func lg(x float64) float64 {
	if x <= 0 {
		return -30
	}
	return math.Log10(x)
}
