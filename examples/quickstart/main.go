// Quickstart: one WiTAG query round end to end.
//
// A client 8 m from an AP transmits a 64-subframe query A-MPDU; a
// battery-free tag between them flips its reflection phase during the
// subframes that should carry a 0; the AP's ordinary block ACK comes back
// with exactly those bits cleared. No device other than the tag knows
// WiTAG exists.
//
// The example then drops to the bit-true PHY to show *why* the corruption
// works: the AP estimates the channel once from the preamble, so a
// mid-aggregate phase flip leaves it equalising with stale CSI and the
// affected subframe fails its FCS.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"witag/internal/channel"
	"witag/internal/core"
	"witag/internal/dot11"
	"witag/internal/phy"
	"witag/internal/stats"
)

func main() {
	if err := analyticRound(); err != nil {
		log.Fatal(err)
	}
	if err := bitTrueDemo(); err != nil {
		log.Fatal(err)
	}
}

func analyticRound() error {
	fmt.Println("=== WiTAG query round (full system) ===")

	// The room: client at the origin, AP 8 m away, some furniture and a
	// couple of people walking.
	env := channel.NewEnvironment(1)
	env.AddReflector(channel.Point{X: 4, Y: 3.5}, 60)
	env.AddReflector(channel.Point{X: 4, Y: -3.5}, 60)
	env.AddScatterers(2, 0, -3, 8, 3, 15, 1.0)

	sys, err := core.NewSystem(env,
		channel.Point{X: 0, Y: 0},   // client
		channel.Point{X: 8, Y: 0},   // unmodified AP
		channel.Point{X: 2, Y: 0.3}, // tag
		68, 7)
	if err != nil {
		return err
	}

	message := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	res, err := sys.QueryRound(message)
	if err != nil {
		return err
	}
	fmt.Printf("tag sent : %v\n", message)
	fmt.Printf("client read from the block ACK: %v\n", res.RxBits[:len(message)])
	fmt.Printf("detected=%v  link SNR=%.1f dB  round airtime=%v  errors=%d\n",
		res.Detected, res.SNRDb, res.Airtime, res.BitErrors)
	rate, err := sys.TagRateBps()
	if err != nil {
		return err
	}
	fmt.Printf("sustained tag data rate: %.1f Kbps (the paper reports 40 Kbps)\n\n", rate/1e3)
	return nil
}

func bitTrueDemo() error {
	fmt.Println("=== why corruption works: the bit-true PHY view ===")

	cfg := phy.DefaultConfig()
	// An aggregate of six QoS null subframes.
	var mpdus [][]byte
	for i := 0; i < 6; i++ {
		f := &dot11.QoSDataFrame{
			FC:     dot11.FrameControl{Type: dot11.TypeQoSNull, ToDS: true},
			Addr1:  dot11.MACAddr{2, 0, 0, 0, 0, 1},
			Addr2:  dot11.MACAddr{2, 0, 0, 0, 0, 2},
			Addr3:  dot11.MACAddr{2, 0, 0, 0, 0, 1},
			SeqNum: uint16(i),
		}
		w, err := f.Marshal()
		if err != nil {
			return err
		}
		mpdus = append(mpdus, w)
	}
	agg, err := dot11.Aggregate(mpdus)
	if err != nil {
		return err
	}
	psdu, err := agg.Marshal()
	if err != nil {
		return err
	}
	bounds, err := agg.SubframeBounds()
	if err != nil {
		return err
	}

	// Tag flips its phase during subframe 3's symbols only.
	const target = 3
	first := cfg.SymbolOfPSDUByte(bounds[target][0]) + 1
	last := cfg.SymbolOfPSDUByte(bounds[target][1]-1) - 1
	tagDelta := func(sc int) complex128 {
		return complex(0.5, 0) * cmplx.Exp(complex(0, 0.45*float64(sc)))
	}
	h := func(sym, sc int) complex128 {
		g := 1 + tagDelta(sc)
		if d := sym - cfg.LTFRepeats; d >= first && d <= last {
			g = 1 - tagDelta(sc) // 180° flip mid-aggregate
		}
		return g
	}

	wf, err := phy.Transmit(psdu, cfg)
	if err != nil {
		return err
	}
	rx := phy.ApplyChannel(wf, h, 1/phy.SNRFromDb(25), stats.NewRNG(3))
	csi, err := phy.EstimateCSI(rx.LTF)
	if err != nil {
		return err
	}
	res, err := phy.Receive(rx, csi, false)
	if err != nil {
		return err
	}

	subs, err := dot11.Deaggregate(res.PSDU)
	if err != nil {
		return err
	}
	for _, s := range subs {
		f, err := dot11.UnmarshalQoSData(s.MPDU)
		status := "FCS OK  (block-ACK bit = 1)"
		seq := "?"
		if err != nil {
			status = "FCS BAD (block-ACK bit = 0)  <- tag was reflecting at 180°"
		} else {
			seq = fmt.Sprint(f.SeqNum)
		}
		fmt.Printf("  subframe seq=%-2s %s\n", seq, status)
	}
	fmt.Println("\nThe preamble CSI is stale for the flipped window: Viterbi and the")
	fmt.Println("FCS collapse for that subframe alone, and the AP reports it — as a")
	fmt.Println("completely standard block ACK bit — without ever knowing why.")
	return nil
}
