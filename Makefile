# Developer / CI entry points. `make check` is the gate: formatting, vet,
# the full test suite under the race detector (the concurrent trial runner
# in internal/sim must stay race-clean), the codec fuzz seed corpus, and
# the worker-count determinism contract.
#
# Release checklist: `make check` then `make gate` — the regression
# sentinel reruns every experiment and compares the science against the
# committed bench/ baselines; regenerate them with `make bench-series`
# only when a science change is intended, and say why in the commit.

GO ?= go
FUZZTIME ?= 15s
BENCHTIME ?= 1s
# gate writes its candidate artifacts here; empty means a throwaway tmpdir.
GATEDIR ?=

.PHONY: check fmt vet lint test race bench benchcmp bench-series gate build cover fuzz fuzzseed determinism

check: fmt vet build lint race fuzzseed determinism

build:
	$(GO) build ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Deeper static analysis, gated on the tools being installed: CI images
# without staticcheck/govulncheck skip with a notice instead of failing,
# and nothing is downloaded implicitly.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks across all packages in benchstat-compatible form, archived to
# bench.txt so successive runs can be compared (`benchstat old.txt bench.txt`).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) ./... | tee bench.txt

# Before/after benchmark comparison: reruns the suite into bench.new.txt
# and diffs it against the archived bench.txt. Uses benchstat when it is
# installed (same opt-in policy as lint); otherwise falls back to a plain
# diff of the benchmark lines.
benchcmp:
	@test -f bench.txt || { echo "benchcmp: no bench.txt — run 'make bench' on the old tree first"; exit 1; }
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) ./... | tee bench.new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench.txt bench.new.txt; \
	else \
		echo "benchcmp: benchstat not installed, falling back to diff"; \
		grep '^Benchmark' bench.txt >bench.old.flat; \
		grep '^Benchmark' bench.new.txt >bench.new.flat; \
		diff bench.old.flat bench.new.flat || true; \
		rm -f bench.old.flat bench.new.flat; \
	fi

# Regenerate the committed baseline series under bench/: every
# experiment's BENCH_<name>.json (plus its metrics delta) at default
# scale. Deterministic for a given seed, so `git diff bench/` after a
# change shows exactly which trajectories moved.
bench-series:
	$(GO) run ./cmd/witag-bench -experiment all -json bench

# Regression sentinel: rerun every experiment into a scratch dir and gate
# the result against the committed bench/ baselines (DESIGN.md §12).
# Deterministic metrics must match exactly and science series must stay
# inside the statistical tolerance band; wall-clock budget is off (-budget
# 0) because the committed baselines were timed on a different machine —
# the PROF profiles are still structure-checked (every phase must keep
# firing). The candidate run logs to LOG_bench.jsonl in the same dir —
# both a gate that logging stays non-perturbing (the science must still
# match the baselines byte-for-byte) and the provenance CI uploads
# alongside the RUNS.jsonl ledger the run appends. Set GATEDIR to keep
# the candidate artifacts (CI uploads them).
gate:
	@out='$(GATEDIR)'; \
	if [ -z "$$out" ]; then out=$$(mktemp -d) && trap 'rm -rf "$$out"' EXIT; fi && \
	$(GO) run ./cmd/witag-bench -experiment all -json "$$out" -log "$$out"/LOG_bench.jsonl -timeline >/dev/null && \
	$(GO) run ./cmd/witag-gate -baseline bench -candidate "$$out" -budget 0

# Whole-repo coverage profile plus the one-line total.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1

# Time-boxed coverage-guided fuzzing of the frame codec and the erasure
# coders; `make fuzzseed` replays just the checked-in corpus (fast,
# deterministic — the CI form).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCodecDecode -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzFountainDecode -fuzztime=$(FUZZTIME) ./internal/coding
	$(GO) test -run='^$$' -fuzz=FuzzRSDecode -fuzztime=$(FUZZTIME) ./internal/coding

fuzzseed:
	$(GO) test -run='^Fuzz' ./internal/core ./internal/coding

# The worker-count determinism contract, for results AND for the
# observability layer: metrics snapshots must be identical for 1 vs N
# workers, attaching instrumentation (or a logging campaign scope, or a
# timeline) must not change any output, canonicalized campaign logs and
# logical timeline exports must be worker-count invariant, and concurrent
# campaigns must stay byte-identical to solo runs with fully disjoint
# metrics.
determinism:
	$(GO) test -run='DeterministicAcrossWorkerCounts|MetricsIdenticalAcrossWorkerCounts|InstrumentationDoesNotPerturbResults|LoggingDoesNotPerturbResults|TimelineDoesNotPerturbResults|TimelineWindowsIdenticalAcrossWorkerCounts|ConcurrentCampaignsIsolated' ./internal/experiments ./internal/sim
