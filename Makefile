# Developer / CI entry points. `make check` is the gate: formatting, vet
# and the full test suite under the race detector (the concurrent trial
# runner in internal/sim must stay race-clean).

GO ?= go

.PHONY: check fmt vet test race bench build

check: fmt vet race

build:
	$(GO) build ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
