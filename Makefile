# Developer / CI entry points. `make check` is the gate: formatting, vet,
# the full test suite under the race detector (the concurrent trial runner
# in internal/sim must stay race-clean), the codec fuzz seed corpus, and
# the worker-count determinism contract.

GO ?= go
FUZZTIME ?= 15s

.PHONY: check fmt vet test race bench build fuzz fuzzseed determinism

check: fmt vet race fuzzseed determinism

build:
	$(GO) build ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Time-boxed coverage-guided fuzzing of the frame codec; `make fuzzseed`
# replays just the checked-in corpus (fast, deterministic — the CI form).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCodecDecode -fuzztime=$(FUZZTIME) ./internal/core

fuzzseed:
	$(GO) test -run='^Fuzz' ./internal/core

determinism:
	$(GO) test -run='DeterministicAcrossWorkerCounts' ./internal/experiments
